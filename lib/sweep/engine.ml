module A = Aig.Network
module L = Aig.Lit
module Sg = Sim.Signature
module P = Sim.Patterns
module Rng = Sutil.Rng

exception Verification_failed of string

(* Fault-injection sites (see DESIGN.md). Both only force the
   pessimistic branch: dropping a counter-example loses refinement
   information, failing a window falls back to SAT — neither can let an
   unproven merge through. *)
let fault_drop_ce = Obs.Fault.register "sweep.drop_ce"
let fault_fail_window = Obs.Fault.register "sweep.fail_window"

(* The cross-run cache is a service-layer concern (disk layout, fault
   sites, quarantine live in [Svc.Cache], which sits above this
   library), so the engine sees it only through this record — the
   classic dependency inversion. The contract the engine enforces on
   top of whatever the store does: nothing read from a hit is trusted
   until re-validated here (certificate replay, counterexample
   re-evaluation), so a malicious store can cost time, never
   soundness. *)
type cache_found = Cache_hit of Obs.Json.t | Cache_miss | Cache_corrupt

type cache_ops = {
  cache_find : key:string -> cache_found;
  cache_store : key:string -> Obs.Json.t -> unit;
}

type config = {
  seed : int64;
  initial_words : int;
  conflict_limit : int option;
  retry_schedule : int list;
  resim_batch : int;
  max_compares : int;
  guided_init : bool;
  guided_queries : int;
  window_refine : bool;
  window_max_leaves : int;
  sim_domains : int;
  par_threshold : int;
  sat_domains : int;
  sat_wave : int;
  deadline : float option;
  budget : Obs.Budget.t option;
  (* An externally owned budget (a pipeline's, or an Obs.Pool lease's)
     the sweep runs under instead of creating its own from [deadline].
     Shared and sticky: SAT work is charged to it, so conflict and
     propagation caps hold across passes and pool accounting sees the
     sweep's real consumption. *)
  verify : bool;
  certify : bool;
  cache : cache_ops option;
  cache_paranoid : bool;
}

let fraig_config =
  {
    seed = 0xF4A16L;
    initial_words = 8;
    conflict_limit = None;
    retry_schedule = [];
    resim_batch = 32;
    max_compares = 1000;
    guided_init = false;
    guided_queries = 0;
    window_refine = false;
    window_max_leaves = 16;
    sim_domains = 1;
    par_threshold = 2048;
    sat_domains = 0;
    sat_wave = 128;
    deadline = None;
    budget = None;
    verify = false;
    certify = false;
    cache = None;
    cache_paranoid = false;
  }

let stp_config =
  {
    fraig_config with
    seed = 0x57EB5L;
    guided_init = true;
    guided_queries = 192;
    window_refine = true;
    window_max_leaves = 16;
  }

type state = {
  cfg : config;
  stats : Stats.t;
  fresh : A.t;
  rng : Rng.t;
  pats : P.t;
  plan : Sim.Kernel.t;
  (* the fresh network compiled into the kernel instruction arena,
     extended in place as nodes are added — signature maintenance is
     plan patching: run the appended instruction suffix for new nodes,
     re-run the whole plan over only the stale trailing words after a
     counter-example batch *)
  mutable sigs : int array array; (* fresh-node id -> signature *)
  mutable sig_count : int; (* fresh nodes with a computed signature *)
  mutable sim_np : int;
  (* patterns covered by current signatures — lags behind
     [P.num_patterns pats] while counter-examples await a batch resim *)
  mutable supports : int list option array;
  (* fresh-node id -> PI nodes in its TFI (sorted), or None once the
     support exceeds the window leaf budget. The network is append-only,
     so these never change — computed once per node bottom-up, they make
     window-eligibility of a candidate pair an O(leaves) check instead
     of a cone traversal. *)
  mutable window_tts : Tt.Truth_table.t option array;
  (* fresh-node id -> exhaustive window signature over the node's own
     support, for nodes whose support fits the leaf budget. This is the
     paper's STP exhaustive simulation: each table is the composition of
     the fanin logic matrices, built once bottom-up. A candidate pair
     compares by lifting both tables onto the joint support. *)
  classes : Equiv_classes.t;
  mutable pending_ce : int;
  env : Sat.Tseitin.env;
  solver : Sat.Solver.t;
  budget : Obs.Budget.t;
  (* Snapshot of the inline solver's cumulative counters at the last
     budget charge — the next charge sends only the delta, so a budget
     shared across passes (or leased from an [Obs.Pool]) accumulates
     true totals. *)
  mutable charged_conflicts : int;
  mutable charged_propagations : int;
  cert : Sat.Drup.t option;
  (* Certified-mode counterexample validation: memoized single-pattern
     evaluation of the fresh network, epoch-stamped so repeated
     validations reuse the scratch arrays without clearing them. *)
  mutable eval_val : int array;
  mutable eval_stamp : int array;
  mutable eval_epoch : int;
}

(* First exhaustion wins: record the reason and the phase where it was
   noticed, then stay degraded — [Obs.Budget] is sticky, so every later
   [budget_ok] call is a cheap [false]. *)
let note_exhausted st reason phase =
  if st.stats.Stats.budget_exhausted = None then begin
    let reason = Obs.Budget.reason_to_string reason in
    st.stats.Stats.budget_exhausted <- Some { Stats.reason; phase };
    Obs.Trace.emitf "budget exhausted (%s) during %s — degrading to \
                     structural translation" reason phase
  end

let budget_ok st phase =
  match Obs.Budget.check st.budget with
  | None -> true
  | Some reason ->
    note_exhausted st reason phase;
    false

(* Charge the inline solver's conflict/propagation work since the last
   charge to the shared budget as a delta. This is what makes conflict
   and propagation caps (an [Obs.Pool] lease's slice) bite mid-sweep:
   the charge trips the sticky flag, and every later [budget_ok] check
   degrades the walk. Granularity is one SAT query, so a sweep can
   overshoot a cap by at most one query's conflict limit. *)
let charge_solver st phase =
  let s = Sat.Solver.stats st.solver in
  let dc = s.Sat.Solver.conflicts - st.charged_conflicts in
  let dp = s.Sat.Solver.propagations - st.charged_propagations in
  st.charged_conflicts <- s.Sat.Solver.conflicts;
  st.charged_propagations <- s.Sat.Solver.propagations;
  match Obs.Budget.charge ~conflicts:dc ~propagations:dp st.budget with
  | Some reason -> note_exhausted st reason phase
  | None -> ()

(* Phase accounting. Wall clock ([Obs.Clock]), never [Sys.time]: CPU
   time sums across domains, so it would bill a parallel resimulation at
   ~N x its real duration. Each instrumented stretch goes to exactly one
   phase, so the phases sum to <= total_time. *)
let timed st phase f =
  let t0 = Obs.Clock.now () in
  let r = f () in
  let dt = Obs.Clock.now () -. t0 in
  (match phase with
  | `Sim -> st.stats.Stats.sim_time <- st.stats.Stats.sim_time +. dt
  | `Plan_compile ->
    st.stats.Stats.plan_compile_time <- st.stats.Stats.plan_compile_time +. dt
  | `Resim -> st.stats.Stats.resim_time <- st.stats.Stats.resim_time +. dt
  | `Window -> st.stats.Stats.window_time <- st.stats.Stats.window_time +. dt
  | `Sat -> st.stats.Stats.sat_time <- st.stats.Stats.sat_time +. dt);
  r

let ensure_sig_capacity st n =
  if n >= Array.length st.sigs then begin
    let cap = max (2 * Array.length st.sigs) (n + 1) in
    let bigger = Array.make cap [||] in
    Array.blit st.sigs 0 bigger 0 (Array.length st.sigs);
    st.sigs <- bigger;
    let bigger_sup = Array.make cap None in
    Array.blit st.supports 0 bigger_sup 0 (Array.length st.supports);
    st.supports <- bigger_sup;
    let bigger_tt = Array.make cap None in
    Array.blit st.window_tts 0 bigger_tt 0 (Array.length st.window_tts);
    st.window_tts <- bigger_tt
  end

(* Merge two sorted leaf lists; None once the size exceeds [cap]. The
   remaining lengths are threaded through the loop so the early-exit
   check never rescans a tail with [List.length]. *)
let merge_support cap a b =
  let rec go n xs lx ys ly =
    if n > cap then None
    else
      match (xs, ys) with
      | [], rest -> if n + ly > cap then None else Some rest
      | rest, [] -> if n + lx > cap then None else Some rest
      | x :: xs', y :: ys' ->
        if x = y then
          match go (n + 1) xs' (lx - 1) ys' (ly - 1) with
          | Some r -> Some (x :: r)
          | None -> None
        else if x < y then
          match go (n + 1) xs' (lx - 1) ys ly with
          | Some r -> Some (x :: r)
          | None -> None
        else
          match go (n + 1) xs lx ys' (ly - 1) with
          | Some r -> Some (y :: r)
          | None -> None
  in
  go 0 a (List.length a) b (List.length b)

let node_support st nd =
  match A.kind st.fresh nd with
  | A.Const -> Some []
  | A.Pi _ -> Some [ nd ]
  | A.And -> (
    let s0 = st.supports.(L.node (A.fanin0 st.fresh nd)) in
    let s1 = st.supports.(L.node (A.fanin1 st.fresh nd)) in
    match (s0, s1) with
    | Some a, Some b -> merge_support st.cfg.window_max_leaves a b
    | _ -> None)

(* Lift a node's window table onto a (sorted) joint support. *)
let lift_tt tt own_support joint =
  let module T = Tt.Truth_table in
  let arity = List.length joint in
  let joint_arr = Array.of_list joint in
  let positions =
    Array.of_list
      (List.map
         (fun leaf ->
           let rec find i =
             if i >= Array.length joint_arr then
               invalid_arg
                 (Printf.sprintf
                    "Sweep.Engine.lift_tt: leaf %d missing from joint support"
                    leaf)
             else if joint_arr.(i) = leaf then i
             else find (i + 1)
           in
           find 0)
         own_support)
  in
  T.remap tt ~positions ~arity

(* The node's exhaustive window signature: composition of the fanin
   logic matrices over its own support, computed on first demand and
   memoized. Only called for nodes whose support fits the budget; the
   fanins of such a node are then eligible too (their supports are
   subsets), so the recursion is total. Depth is bounded by the logic
   depth of the network. *)
let rec window_tt st nd =
  let module T = Tt.Truth_table in
  match st.window_tts.(nd) with
  | Some tt -> tt
  | None ->
    let sup = match st.supports.(nd) with Some s -> s | None -> assert false in
    let tt =
      match A.kind st.fresh nd with
      | A.Const -> T.const0 0
      | A.Pi _ -> T.nth_var 1 0
      | A.And ->
        let side f =
          let child = L.node f in
          let csup =
            match st.supports.(child) with Some s -> s | None -> assert false
          in
          let lifted = lift_tt (window_tt st child) csup sup in
          if L.is_compl f then T.not_ lifted else lifted
        in
        T.and_ (side (A.fanin0 st.fresh nd)) (side (A.fanin1 st.fresh nd))
    in
    st.window_tts.(nd) <- Some tt;
    tt

(* Parallel simulation pays off only when there are enough pattern words
   to shard; below the configured threshold the sequential path wins. *)
let sim_domains st =
  if st.cfg.sim_domains > 1 && P.num_patterns st.pats >= st.cfg.par_threshold
  then st.cfg.sim_domains
  else 1

(* Register every fresh node created since the last registration: extend
   the kernel plan with instructions for the new nodes, then execute
   only that instruction suffix over the pattern prefix the current
   signatures cover ([sim_np] — it lags the pattern set while
   counter-examples await a batch resim). The execution is the engine's
   "initial simulation" work (sim_time); the compile part is accounted
   separately so plan cost stays visible. *)
let register_new_nodes st =
  let n = A.num_nodes st.fresh in
  if n > st.sig_count then begin
    timed st `Plan_compile (fun () -> Sim.Kernel.extend_aig st.plan st.fresh);
    timed st `Sim (fun () ->
        ensure_sig_capacity st (n - 1);
        let nw = max 1 ((st.sim_np + 31) / 32) in
        for nd = st.sig_count to n - 1 do
          st.sigs.(nd) <- Array.make nw 0
        done;
        (* Bulk registrations (the initial pass over the PIs, or any
           large append) are worth sharding across domains; steady-state
           single-node appends run the suffix sequentially. Sharding
           splits the word range per plan execution, so the rows are
           bit-identical either way. *)
        let domains = if n - st.sig_count > 64 then sim_domains st else 1 in
        Sim.Kernel.run_sharded ~domains st.plan st.pats st.sigs
          ~inst_lo:st.sig_count ~inst_hi:n ~lo:0 ~hi:nw;
        for nd = st.sig_count to n - 1 do
          Sg.num_patterns_mask st.sim_np st.sigs.(nd);
          st.supports.(nd) <- node_support st nd;
          Equiv_classes.add st.classes nd st.sigs.(nd)
        done;
        st.sig_count <- n)
  end

(* Resimulation after a batch of counter-examples, as a plan patch: the
   pattern set is append-only, so every signature word before the one
   containing the first new pattern is already final — re-execute the
   whole plan over only the stale trailing words, then rebuild the
   candidate classes. *)
let resimulate st =
  st.stats.Stats.resimulations <- st.stats.Stats.resimulations + 1;
  Obs.Trace.emitf "resim #%d: %d nodes, %d patterns"
    st.stats.Stats.resimulations (A.num_nodes st.fresh)
    (P.num_patterns st.pats);
  (* Any nodes added since the last registration first get rows over the
     covered prefix (no-op in the steady state). *)
  register_new_nodes st;
  let n = A.num_nodes st.fresh in
  timed st `Resim (fun () ->
      let np = P.num_patterns st.pats in
      let nw = max 1 ((np + 31) / 32) in
      let from_w = if st.sim_np = 0 then 0 else st.sim_np lsr 5 in
      for nd = 0 to n - 1 do
        let old = st.sigs.(nd) in
        if Array.length old <> nw then begin
          let fresh = Array.make nw 0 in
          Array.blit old 0 fresh 0 (min nw (Array.length old));
          st.sigs.(nd) <- fresh
        end
      done;
      Sim.Kernel.run_sharded ~domains:(sim_domains st) st.plan st.pats st.sigs
        ~inst_lo:0 ~inst_hi:n ~lo:from_w ~hi:nw;
      for nd = 0 to n - 1 do
        Sg.num_patterns_mask np st.sigs.(nd)
      done);
  st.sim_np <- P.num_patterns st.pats;
  Equiv_classes.clear st.classes ~num_patterns:st.sim_np;
  for nd = 0 to n - 1 do
    Equiv_classes.add st.classes nd st.sigs.(nd)
  done;
  st.pending_ce <- 0

let note_counterexample st ce =
  (* Injected fault: lose the counter-example. The classes stay coarser
     than they should be, costing extra SAT calls — but never a wrong
     merge, since merges need proof regardless. *)
  if Obs.Fault.fires fault_drop_ce then ()
  else begin
    st.stats.Stats.ce_patterns <- st.stats.Stats.ce_patterns + 1;
    P.add_pattern_randomized st.pats st.rng (Array.map (fun b -> Some b) ce);
    st.pending_ce <- st.pending_ce + 1;
    if st.pending_ce >= st.cfg.resim_batch then resimulate st
  end

(* Certified-mode model validation at the network level: evaluate both
   cones under the counterexample and demand they actually differ. The
   Tseitin layer has already checked the solver's model against the
   checker's clause database; this closes the remaining gap (encoding
   bugs, PI extraction bugs) by re-deriving the disagreement from the
   AIG itself. *)
let ce_distinguishes st ce nd r compl =
  let n = A.num_nodes st.fresh in
  if Array.length st.eval_stamp < n then begin
    let cap = max n (2 * Array.length st.eval_stamp) in
    st.eval_val <- Array.make cap 0;
    st.eval_stamp <- Array.make cap 0;
    st.eval_epoch <- 0
  end;
  st.eval_epoch <- st.eval_epoch + 1;
  let epoch = st.eval_epoch in
  let rec eval_node nd =
    if st.eval_stamp.(nd) = epoch then st.eval_val.(nd)
    else begin
      let v =
        match A.kind st.fresh nd with
        | A.Const -> 0
        | A.Pi i -> if i < Array.length ce && ce.(i) then 1 else 0
        | A.And ->
          let side f =
            let v = eval_node (L.node f) in
            if L.is_compl f then 1 - v else v
          in
          side (A.fanin0 st.fresh nd) land side (A.fanin1 st.fresh nd)
      in
      st.eval_stamp.(nd) <- epoch;
      st.eval_val.(nd) <- v;
      v
    end
  in
  let a = eval_node nd in
  let b =
    let v = eval_node r in
    if compl then 1 - v else v
  in
  a <> b

(* Exhaustive-window comparison from the cached tables: lift both onto
   the joint support and compare columns. Exact — equal tables prove
   equivalence, different tables refute it — so no SAT call happens
   either way. Shared by the inline walk and the dispatcher's collect
   phase. *)
let window_verdict st nd r =
  if not st.cfg.window_refine then `Unknown
  else if Obs.Fault.fires fault_fail_window then
    (* Injected fault: refinement unavailable — fall back to the
       solver, which must reach the same verdict. *)
    `Unknown
  else
    match (st.supports.(nd), st.supports.(r)) with
    | Some sa, Some sb -> (
      match merge_support st.cfg.window_max_leaves sa sb with
      | None -> `Unknown
      | Some joint ->
        timed st `Window (fun () ->
            let module T = Tt.Truth_table in
            (* Structural duplicates usually share the support
               exactly; skip the lift then. *)
            let la, lb =
              if List.equal Int.equal sa sb then
                (window_tt st nd, window_tt st r)
              else
                ( lift_tt (window_tt st nd) sa joint,
                  lift_tt (window_tt st r) sb joint )
            in
            if T.equal la lb then `Equal
            else if T.equal la (T.not_ lb) then `Compl
            else `Different))
    | _ -> `Unknown

(* ---- cross-run cache path ----

   With [config.cache] armed, the solver work of the inline walk runs
   through {!Cone_cert}: the pair's joint TFI is extracted into a
   canonical standalone network, its key looked up, and on a miss the
   pair is proven on a throwaway solver whose recorded refutation is
   self-contained — exactly what can be stored and replayed by another
   run. Nothing from disk is trusted: an equivalence entry is served
   only after its certificate replays (paranoid or certified mode;
   otherwise the store's checksum gates it), a counterexample entry
   only after it actually distinguishes the two cones on the AIG.
   Undetermined outcomes are never stored, so a warm cache replays the
   cold run's verdict sequence exactly. *)

let cache_conflict_limits cfg =
  match cfg.conflict_limit with
  | None -> []
  | Some base -> base :: cfg.retry_schedule

(* Cache entries store counterexamples over the extracted cone's PIs;
   the engine's pattern set wants them over all PIs of [st.fresh]. *)
let expand_ce st (pc : Cone_cert.t) small =
  let ce = Array.make (A.num_pis st.fresh) false in
  Array.iteri
    (fun i v -> if v then ce.(pc.Cone_cert.pc_leaves.(i)) <- true)
    small;
  ce

let fold_cone_stats st (cs : Cone_cert.stats) =
  let s = cs.Cone_cert.s_solver in
  (* Cone queries run on a throwaway solver, so these counters are
     already per-query deltas — charge them to the shared budget
     directly. *)
  (match
     Obs.Budget.charge ~conflicts:s.Sat.Solver.conflicts
       ~propagations:s.Sat.Solver.propagations st.budget
   with
  | Some reason -> note_exhausted st reason "sat"
  | None -> ());
  st.stats.Stats.sat_decisions <-
    st.stats.Stats.sat_decisions + s.Sat.Solver.decisions;
  st.stats.Stats.sat_conflicts <-
    st.stats.Stats.sat_conflicts + s.Sat.Solver.conflicts;
  st.stats.Stats.sat_propagations <-
    st.stats.Stats.sat_propagations + s.Sat.Solver.propagations;
  st.stats.Stats.sat_learned <-
    st.stats.Stats.sat_learned + s.Sat.Solver.learned;
  (* Each retried call was an undetermined outcome, mirroring the
     inline path's per-call counting. *)
  st.stats.Stats.sat_undet <-
    st.stats.Stats.sat_undet + cs.Cone_cert.s_retries;
  st.stats.Stats.sat_retries <-
    st.stats.Stats.sat_retries + cs.Cone_cert.s_retries

(* Replay gate for a stored equivalence certificate. Certified runs
   must replay (a hit feeds a merge the run promises is proven);
   paranoid mode replays by policy; otherwise the checksum the store
   already verified is the line of defense and the proof is trusted. *)
let cache_accept_equiv st pc proof =
  if st.cfg.cache_paranoid || st.cert <> None then (
    match timed st `Sat (fun () -> Cone_cert.replay pc proof) with
    | Ok () -> true
    | Error why ->
      Obs.Trace.emitf "cache certificate failed replay (%s) — entry rejected"
        why;
      false)
  else true

let cache_attempt st ops nd r compl =
  let pc =
    timed st `Sat (fun () ->
        Cone_cert.extract st.fresh (L.of_node nd false) (L.of_node r compl))
  in
  let key = pc.Cone_cert.pc_key in
  let solve_and_store () =
    let outcome, cs =
      timed st `Sat (fun () ->
          Cone_cert.solve
            ~conflict_limits:(cache_conflict_limits st.cfg)
            ?deadline:(Obs.Budget.deadline st.budget)
            ~certify:(st.cert <> None) pc)
    in
    fold_cone_stats st cs;
    match outcome with
    | Cone_cert.O_equiv proof ->
      st.stats.Stats.sat_unsat <- st.stats.Stats.sat_unsat + 1;
      if st.cert <> None then
        st.stats.Stats.certified_unsat <- st.stats.Stats.certified_unsat + 1;
      ops.cache_store ~key (Cone_cert.entry_to_json (Cone_cert.E_equiv proof));
      `Merge (L.of_node r compl)
    | Cone_cert.O_diff small ->
      let ce = expand_ce st pc small in
      if st.cert <> None && not (ce_distinguishes st ce nd r compl) then begin
        st.stats.Stats.certificate_rejected <-
          st.stats.Stats.certificate_rejected + 1;
        Obs.Trace.emitf
          "counterexample rejected (does not distinguish nodes %d and %d) — \
           merge skipped"
          nd r;
        `Fail
      end
      else begin
        st.stats.Stats.sat_sat <- st.stats.Stats.sat_sat + 1;
        if st.cert <> None then
          st.stats.Stats.certified_models <- st.stats.Stats.certified_models + 1;
        ops.cache_store ~key (Cone_cert.entry_to_json (Cone_cert.E_diff small));
        note_counterexample st ce;
        `Ce
      end
    | Cone_cert.O_undet ->
      st.stats.Stats.sat_undet <- st.stats.Stats.sat_undet + 1;
      `Fail
    | Cone_cert.O_uncert why ->
      st.stats.Stats.certificate_rejected <-
        st.stats.Stats.certificate_rejected + 1;
      Obs.Trace.emitf
        "certificate rejected (%s) — node %d keeps its structural translation"
        why nd;
      `Fail
  in
  let reject () =
    st.stats.Stats.cache_rejected <- st.stats.Stats.cache_rejected + 1;
    solve_and_store ()
  in
  match ops.cache_find ~key with
  | Cache_corrupt -> reject ()
  | Cache_miss ->
    st.stats.Stats.cache_misses <- st.stats.Stats.cache_misses + 1;
    solve_and_store ()
  | Cache_hit body -> (
    match Cone_cert.entry_of_json body with
    | Error _ -> reject ()
    | Ok (Cone_cert.E_equiv proof) ->
      if cache_accept_equiv st pc proof then begin
        st.stats.Stats.cache_hits <- st.stats.Stats.cache_hits + 1;
        `Merge (L.of_node r compl)
      end
      else reject ()
    | Ok (Cone_cert.E_diff small) ->
      if Array.length small <> Array.length pc.Cone_cert.pc_leaves then
        reject ()
      else begin
        let ce = expand_ce st pc small in
        (* Unconditional (not just certified mode): the pattern came
           from disk, and a non-distinguishing pattern would quietly
           poison the class refinement. *)
        if ce_distinguishes st ce nd r compl then begin
          st.stats.Stats.cache_hits <- st.stats.Stats.cache_hits + 1;
          note_counterexample st ce;
          `Ce
        end
        else reject ()
      end)

(* Dispatch-mode cache use is lookup-only, and only for equivalence
   entries heading a candidate walk: a hit there merges on the spot
   exactly like a window-proved equality, anything else falls through
   to the solver pool unchanged. Serving mid-walk hits would reorder
   the walk relative to the inline path, and standalone store-backs
   from worker domains would race the single-writer discipline — the
   inline path is the cache's writer. Misses are deliberately not
   counted here (every Unknown candidate would "miss"); rejections
   are, because a rejection means an entry existed and was refused. *)
let cache_lookup_equiv st ops nd r compl =
  let pc =
    timed st `Sat (fun () ->
        Cone_cert.extract st.fresh (L.of_node nd false) (L.of_node r compl))
  in
  match ops.cache_find ~key:pc.Cone_cert.pc_key with
  | Cache_miss -> None
  | Cache_corrupt ->
    st.stats.Stats.cache_rejected <- st.stats.Stats.cache_rejected + 1;
    None
  | Cache_hit body -> (
    match Cone_cert.entry_of_json body with
    | Ok (Cone_cert.E_equiv proof) ->
      if cache_accept_equiv st pc proof then begin
        st.stats.Stats.cache_hits <- st.stats.Stats.cache_hits + 1;
        Some (L.of_node r compl)
      end
      else begin
        st.stats.Stats.cache_rejected <- st.stats.Stats.cache_rejected + 1;
        None
      end
    | Ok (Cone_cert.E_diff _) -> None
    | Error _ ->
      st.stats.Stats.cache_rejected <- st.stats.Stats.cache_rejected + 1;
      None)

(* Try to merge fresh node [nd] onto an earlier node. Returns the literal
   [nd] proved equal to, if any. *)
let try_merge st nd =
  let reps =
    List.filter
      (fun r -> r < nd)
      (Equiv_classes.candidates st.classes st.sigs.(nd))
  in
  let rec attempt tried = function
    | [] -> None
    | _ when tried >= st.cfg.max_compares -> None
    | _ when not (budget_ok st "sat") ->
      (* Mid-node exhaustion: abandon the remaining candidates. The node
         keeps its structural translation — never a partial merge. *)
      None
    | r :: rest -> (
      (* Re-read on every attempt: a counter-example resimulation inside
         this loop refreshes all signatures. *)
      let sig_n = st.sigs.(nd) in
      let np = st.sim_np in
      let compl = not (Sg.equal sig_n st.sigs.(r)) in
      (* Signature agreement is necessary but a stale complement
         relation can slip in right after CEs; re-check cheaply.
         [equal_complement] compares in place — this runs once per
         representative comparison, so allocating a full complement
         signature here was a measurable hot-path cost. The skip is a
         pure filter (no verdict was sought), so it does not charge
         [tried]. *)
      if compl && not (Sg.equal_complement ~num_patterns:np sig_n st.sigs.(r))
      then attempt tried rest
      else
        match window_verdict st nd r with
        | `Equal ->
          st.stats.Stats.window_merges <- st.stats.Stats.window_merges + 1;
          Some (L.of_node r false)
        | `Compl ->
          st.stats.Stats.window_merges <- st.stats.Stats.window_merges + 1;
          Some (L.of_node r true)
        | `Different ->
          st.stats.Stats.window_splits <- st.stats.Stats.window_splits + 1;
          (* Every examined representative charges [max_compares] — a
             class dominated by window splits must still terminate its
             walk. (This used to count only counterexample attempts.) *)
          attempt (tried + 1) rest
        | `Unknown -> (
          (* SAT attempts walk the escalating retry schedule: a pair that
             comes back undetermined under the base conflict limit is
             re-queried with each schedule entry in turn (budget
             permitting) before the engine gives the node up. *)
          let rec sat_attempt limit schedule =
            let answer =
              timed st `Sat (fun () ->
                  Sat.Tseitin.check_equiv ?conflict_limit:limit
                    ?deadline:(Obs.Budget.deadline st.budget)
                    ?certify:st.cert st.env (L.of_node nd false)
                    (L.of_node r compl))
            in
            charge_solver st "sat";
            match answer with
            | Sat.Tseitin.Equivalent ->
              st.stats.Stats.sat_unsat <- st.stats.Stats.sat_unsat + 1;
              if st.cert <> None then
                st.stats.Stats.certified_unsat <-
                  st.stats.Stats.certified_unsat + 1;
              `Merge (L.of_node r compl)
            | Sat.Tseitin.Uncertified why ->
              (* The solver answered but its certificate failed to
                 replay. Treated exactly like budget exhaustion on this
                 node: the merge is skipped and the node keeps its
                 structural translation — degrade, never trust. *)
              st.stats.Stats.certificate_rejected <-
                st.stats.Stats.certificate_rejected + 1;
              Obs.Trace.emitf
                "certificate rejected (%s) — node %d keeps its structural \
                 translation"
                why nd;
              `Fail
            | Sat.Tseitin.Counterexample ce
              when st.cert <> None && not (ce_distinguishes st ce nd r compl)
              ->
              (* A counterexample that does not actually distinguish the
                 cones refines nothing; feeding it to the pattern set
                 would only launder a solver lie into the classes. *)
              st.stats.Stats.certificate_rejected <-
                st.stats.Stats.certificate_rejected + 1;
              Obs.Trace.emitf
                "counterexample rejected (does not distinguish nodes %d and \
                 %d) — merge skipped"
                nd r;
              `Fail
            | Sat.Tseitin.Counterexample ce ->
              st.stats.Stats.sat_sat <- st.stats.Stats.sat_sat + 1;
              if st.cert <> None then
                st.stats.Stats.certified_models <-
                  st.stats.Stats.certified_models + 1;
              note_counterexample st ce;
              `Ce
            | Sat.Tseitin.Undetermined -> (
              st.stats.Stats.sat_undet <- st.stats.Stats.sat_undet + 1;
              match schedule with
              | next :: later
                when (match Obs.Budget.check_now st.budget with
                     | None -> true
                     | Some reason ->
                       note_exhausted st reason "sat";
                       false) ->
                st.stats.Stats.sat_retries <- st.stats.Stats.sat_retries + 1;
                sat_attempt (Some next) later
              | _ ->
                (* don't-touch: stop burning budget on this node *)
                `Fail)
          in
          let verdict =
            match st.cfg.cache with
            | Some ops -> cache_attempt st ops nd r compl
            | None -> sat_attempt st.cfg.conflict_limit st.cfg.retry_schedule
          in
          match verdict with
          | `Merge lit -> Some lit
          | `Ce -> attempt (tried + 1) rest
          | `Fail -> None))
  in
  attempt 0 reps

(* ---- parallel dispatch (config.sat_domains >= 1) ----

   The engine runs in waves. Collect: translate old nodes on the main
   thread, resolving structural hits and window verdicts inline, until
   [sat_wave] nodes need solver work; each becomes a task carrying its
   pre-filtered candidate walk. Solve: the network frozen, the solver
   domains drain the task queue ({!Dispatch.run_wave}), each loading
   cone CNFs into its own incremental solver. Cube: tasks whose retry
   schedule ran dry are split over all assignments of a few cone PIs
   and re-attacked across the pool. Merge: the main thread — the single
   writer — applies results in task order: proven merges into the map,
   validated counterexamples into the pattern set (batched into one
   shared resimulation), counters into stats.

   Merges stay proof-gated exactly as in the inline path, so the result
   is CEC-equivalent to the input regardless of domain count or merge
   arrival order; what can drift between domain counts is only how much
   redundancy a wave's deferred merges leave for later passes. *)

type collected =
  | C_none
  | C_window_merge of L.t
  | C_cache_merge of L.t
  | C_task of Dispatch.cand list

(* The window/signature part of [try_merge], producing the candidate
   walk a worker will run. Window splits are charged to [max_compares]
   here; a window-proved equality before any SAT candidate merges on
   the spot, after one it terminates the task's walk (nothing beyond it
   is reachable). *)
let collect_candidates st nd =
  let reps =
    List.filter
      (fun r -> r < nd)
      (Equiv_classes.candidates st.classes st.sigs.(nd))
  in
  let sig_n = st.sigs.(nd) in
  let np = st.sim_np in
  let finish acc =
    match acc with [] -> C_none | l -> C_task (List.rev l)
  in
  let rec walk tried acc = function
    | [] -> finish acc
    | _ when tried >= st.cfg.max_compares -> finish acc
    | r :: rest -> (
      let compl = not (Sg.equal sig_n st.sigs.(r)) in
      if compl && not (Sg.equal_complement ~num_patterns:np sig_n st.sigs.(r))
      then walk tried acc rest
      else
        match window_verdict st nd r with
        | (`Equal | `Compl) as v ->
          let c = match v with `Compl -> true | `Equal -> false in
          if acc = [] then begin
            st.stats.Stats.window_merges <- st.stats.Stats.window_merges + 1;
            C_window_merge (L.of_node r c)
          end
          else
            finish
              ({ Dispatch.c_rep = r; c_compl = c; c_window_eq = true } :: acc)
        | `Different ->
          st.stats.Stats.window_splits <- st.stats.Stats.window_splits + 1;
          walk (tried + 1) acc rest
        | `Unknown -> (
          let defer () =
            walk (tried + 1)
              ({ Dispatch.c_rep = r; c_compl = compl; c_window_eq = false }
              :: acc)
              rest
          in
          match st.cfg.cache with
          | Some ops when acc = [] -> (
            match cache_lookup_equiv st ops nd r compl with
            | Some lit -> C_cache_merge lit
            | None -> defer ())
          | _ -> defer ()))
  in
  walk 0 [] reps

let last_conflict_limit cfg =
  match List.rev cfg.retry_schedule with
  | top :: _ -> Some top
  | [] -> cfg.conflict_limit

(* Cube width: enough cubes to keep the pool busy (>= 2 per domain),
   capped at 4 variables (16 cubes) and by the cone's PI count. *)
let cube_vars ~domains ~available =
  if available = 0 then 0
  else begin
    let rec bits k = if 1 lsl k >= 2 * domains then k else bits (k + 1) in
    min (min 4 available) (bits 1)
  end

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(* Re-attack the wave's hard tasks cube-and-conquer style: enumerate all
   2^k assignments of k cone PIs as assumption cubes and solve them
   across the pool. A pair merges only if every cube of its complete
   enumeration is UNSAT (each certified in certified mode); any SAT cube
   is an ordinary counterexample. *)
let cube_phase st disp tasks results =
  let hard = ref [] in
  Array.iteri
    (fun j (res : Dispatch.result) ->
      match res.Dispatch.r_outcome with
      | Dispatch.Hard c -> hard := (j, c) :: !hard
      | _ -> ())
    results;
  let hard = List.rev !hard in
  if hard <> [] && budget_ok st "sat" then begin
    let queries = ref [] and nq = ref 0 and spans = ref [] in
    List.iter
      (fun (j, (c : Dispatch.cand)) ->
        let node = tasks.(j).Dispatch.t_node in
        let pis = Aig.Cone.leaves st.fresh [ node; c.Dispatch.c_rep ] in
        let k =
          cube_vars ~domains:(Dispatch.domains disp)
            ~available:(List.length pis)
        in
        if k > 0 then begin
          let pis = take k pis in
          st.stats.Stats.cube_splits <- st.stats.Stats.cube_splits + 1;
          spans := (j, c, 1 lsl k, !nq) :: !spans;
          for m = 0 to (1 lsl k) - 1 do
            queries :=
              {
                Dispatch.q_node = node;
                q_rep = c.Dispatch.c_rep;
                q_compl = c.Dispatch.c_compl;
                q_cube = List.mapi (fun b pi -> (pi, (m lsr b) land 1 = 1)) pis;
              }
              :: !queries;
            incr nq
          done
        end)
      hard;
    let qarr = Array.of_list (List.rev !queries) in
    if Array.length qarr > 0 then begin
      st.stats.Stats.cube_queries <-
        st.stats.Stats.cube_queries + Array.length qarr;
      Obs.Trace.emitf "cube-and-conquer: %d hard pairs, %d cube queries"
        (List.length !spans) (Array.length qarr);
      let answers =
        timed st `Sat (fun () ->
            Dispatch.run_cubes disp
              ~conflict_limit:(last_conflict_limit st.cfg)
              qarr)
      in
      List.iter
        (fun (j, (c : Dispatch.cand), ncubes, start) ->
          let res = results.(j) in
          let counts = res.Dispatch.r_counts in
          let all_unsat = ref true in
          for i = start to start + ncubes - 1 do
            match answers.(i) with
            | Dispatch.C_unsat ->
              counts.Dispatch.n_unsat <- counts.Dispatch.n_unsat + 1;
              if st.cert <> None then
                counts.Dispatch.n_cert_unsat <-
                  counts.Dispatch.n_cert_unsat + 1
            | Dispatch.C_ce ce ->
              all_unsat := false;
              res.Dispatch.r_ces <-
                (ce, c.Dispatch.c_rep, c.Dispatch.c_compl)
                :: res.Dispatch.r_ces
            | Dispatch.C_undet ->
              all_unsat := false;
              counts.Dispatch.n_undet <- counts.Dispatch.n_undet + 1
            | Dispatch.C_uncert ->
              all_unsat := false;
              counts.Dispatch.n_cert_rejected <-
                counts.Dispatch.n_cert_rejected + 1
          done;
          res.Dispatch.r_outcome <-
            (if !all_unsat then
               Dispatch.Merged
                 (L.of_node c.Dispatch.c_rep c.Dispatch.c_compl, false)
             else Dispatch.Exhausted))
        (List.rev !spans)
    end
  end

(* Merge phase for one task: fold the worker's counters into stats,
   validate and apply its counterexamples in attempt order, then apply
   the proven merge (if any) to the translation map. Runs only on the
   main thread.

   [seen] deduplicates counterexample patterns across the whole
   dispatched sweep: tasks of one wave walk the same frozen classes, so
   different tasks routinely return bit-identical counterexamples, and
   a duplicate pattern refines nothing — adding it would only grow the
   pattern set (and with it every subsequent resimulation) linearly in
   SAT answers. The query still counts into [sat_sat]; only the
   redundant pattern is dropped, so [ce_patterns] counts patterns that
   actually entered the simulation set. *)
let apply_result st seen (task : Dispatch.task) (res : Dispatch.result) map
    old_nd l =
  let counts = res.Dispatch.r_counts in
  st.stats.Stats.sat_unsat <- st.stats.Stats.sat_unsat + counts.Dispatch.n_unsat;
  st.stats.Stats.sat_undet <- st.stats.Stats.sat_undet + counts.Dispatch.n_undet;
  st.stats.Stats.sat_retries <-
    st.stats.Stats.sat_retries + counts.Dispatch.n_retries;
  st.stats.Stats.certified_unsat <-
    st.stats.Stats.certified_unsat + counts.Dispatch.n_cert_unsat;
  if counts.Dispatch.n_cert_rejected > 0 then begin
    st.stats.Stats.certificate_rejected <-
      st.stats.Stats.certificate_rejected + counts.Dispatch.n_cert_rejected;
    Obs.Trace.emitf
      "certificate rejected — node %d keeps its structural translation"
      task.Dispatch.t_node
  end;
  List.iter
    (fun (ce, rep, compl) ->
      if
        st.cert <> None
        && not (ce_distinguishes st ce task.Dispatch.t_node rep compl)
      then begin
        st.stats.Stats.certificate_rejected <-
          st.stats.Stats.certificate_rejected + 1;
        Obs.Trace.emitf
          "counterexample rejected (does not distinguish nodes %d and %d) — \
           pattern discarded"
          task.Dispatch.t_node rep
      end
      else begin
        st.stats.Stats.sat_sat <- st.stats.Stats.sat_sat + 1;
        if st.cert <> None then
          st.stats.Stats.certified_models <-
            st.stats.Stats.certified_models + 1;
        let key =
          String.init (Array.length ce) (fun i -> if ce.(i) then '1' else '0')
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          note_counterexample st ce
        end
      end)
    (List.rev res.Dispatch.r_ces);
  match res.Dispatch.r_outcome with
  | Dispatch.Merged (lit, via_window) ->
    if via_window then
      st.stats.Stats.window_merges <- st.stats.Stats.window_merges + 1;
    st.stats.Stats.merges <- st.stats.Stats.merges + 1;
    if L.is_const lit then
      st.stats.Stats.const_merges <- st.stats.Stats.const_merges + 1;
    map.(old_nd) <- L.xor_compl lit (L.is_compl l)
  | Dispatch.Exhausted | Dispatch.Hard _ -> ()
  | Dispatch.Stopped -> (
    match Obs.Budget.exhausted st.budget with
    | Some reason -> note_exhausted st reason "sat"
    | None -> ())

let sweep_dispatched st old_net map tr =
  let cfg = st.cfg in
  let disp =
    Dispatch.create ~domains:cfg.sat_domains ~certify:cfg.certify
      ~conflict_limit:cfg.conflict_limit ~retry_schedule:cfg.retry_schedule
      st.fresh st.budget
  in
  Fun.protect
    ~finally:(fun () ->
      let ds = Dispatch.solver_stats disp in
      st.stats.Stats.sat_decisions <-
        st.stats.Stats.sat_decisions + ds.Sat.Solver.decisions;
      st.stats.Stats.sat_conflicts <-
        st.stats.Stats.sat_conflicts + ds.Sat.Solver.conflicts;
      st.stats.Stats.sat_propagations <-
        st.stats.Stats.sat_propagations + ds.Sat.Solver.propagations;
      st.stats.Stats.sat_learned <-
        st.stats.Stats.sat_learned + ds.Sat.Solver.learned;
      Dispatch.shutdown disp)
  @@ fun () ->
  let ands = ref [] in
  A.iter_ands old_net (fun nd -> ands := nd :: !ands);
  let ands = Array.of_list (List.rev !ands) in
  let n = Array.length ands in
  let seen_ces = Hashtbl.create 256 in
  let wave = max 1 cfg.sat_wave in
  let trace_every = 4096 in
  let i = ref 0 in
  while !i < n do
    (* Collect: translate until [sat_wave] tasks await solver work. *)
    let tasks = ref [] and infos = ref [] and pending = ref 0 in
    while !i < n && !pending < wave do
      let old_nd = ands.(!i) in
      incr i;
      if Obs.Trace.enabled () && !i mod trace_every = 0 then
        Obs.Trace.emitf "progress: %d/%d ANDs, %d merges, %d SAT calls" !i n
          st.stats.Stats.merges
          (Stats.total_sat_calls st.stats);
      let before = A.num_nodes st.fresh in
      let l =
        A.add_and st.fresh
          (tr (A.fanin0 old_net old_nd))
          (tr (A.fanin1 old_net old_nd))
      in
      map.(old_nd) <- l;
      if A.num_nodes st.fresh <> before && budget_ok st "sweep" then begin
        register_new_nodes st;
        match collect_candidates st (L.node l) with
        | C_none -> ()
        | C_window_merge merged | C_cache_merge merged ->
          st.stats.Stats.merges <- st.stats.Stats.merges + 1;
          if L.is_const merged then
            st.stats.Stats.const_merges <- st.stats.Stats.const_merges + 1;
          map.(old_nd) <- L.xor_compl merged (L.is_compl l)
        | C_task cands ->
          tasks := { Dispatch.t_node = L.node l; t_cands = cands } :: !tasks;
          infos := (old_nd, l) :: !infos;
          incr pending
      end
    done;
    if !pending > 0 then begin
      let tasks = Array.of_list (List.rev !tasks) in
      let infos = Array.of_list (List.rev !infos) in
      (* Solve: the network is frozen until the wave returns. *)
      let results =
        timed st `Sat (fun () -> Dispatch.run_wave disp tasks)
      in
      cube_phase st disp tasks results;
      (* Merge: single writer, task order. *)
      Array.iteri
        (fun j res ->
          let old_nd, l = infos.(j) in
          apply_result st seen_ces tasks.(j) res map old_nd l)
        results
    end
  done

let run ?(config = stp_config) old_net =
  let t_start = Obs.Clock.now () in
  let stats = Stats.create () in
  let rng = Rng.create config.seed in
  let num_pis = A.num_pis old_net in
  Obs.Trace.emitf "sweep start: %d PIs, %d ANDs, %d POs" num_pis
    (A.num_ands old_net) (A.num_pos old_net);
  (* Initial patterns: random words, optionally refined by SAT-guided
     generation on the old network. *)
  let pats =
    P.random ~seed:(Rng.int64 rng) ~num_pis
      ~num_patterns:(32 * max 1 config.initial_words)
  in
  let budget =
    match config.budget with
    | Some b -> b (* externally owned: shared caps, shared stickiness *)
    | None -> (
      match config.deadline with
      | Some d -> Obs.Budget.create ~deadline:d ()
      | None -> Obs.Budget.unlimited ())
  in
  if config.guided_init then begin
    let t0 = Obs.Clock.now () in
    let outcome =
      Guided_patterns.generate ~max_queries:config.guided_queries
        ?deadline:(Obs.Budget.deadline budget) old_net pats
        ~seed:(Rng.int64 rng)
    in
    stats.Stats.guided_time <-
      stats.Stats.guided_time +. (Obs.Clock.now () -. t0);
    (* Guided queries that came back UNSAT proved input nodes constant.
       The engine does not need them seeded: a truly constant node's
       signature collides with node 0 on every pattern set, so the
       class walk proves the merge anyway — but the work was real, so
       record it instead of discarding the list silently. *)
    stats.Stats.guided_consts <-
      List.length outcome.Guided_patterns.proven_const;
    Obs.Trace.emitf "guided init: +%d patterns, %d queries, %d consts proven"
      outcome.Guided_patterns.patterns_added outcome.Guided_patterns.queries
      stats.Stats.guided_consts
  end;
  stats.Stats.initial_patterns <- P.num_patterns pats;
  let fresh = A.create ~capacity:(A.num_nodes old_net) () in
  let solver = Sat.Solver.create () in
  (* Budgeted sweeps issue thousands of small queries on this one
     solver; size the learnt-DB ceiling to the largest per-query budget
     (the last retry rung) rather than the solver's whole-run default,
     so LBD reduction keeps the database proportional to a query. *)
  (match config.conflict_limit with
  | Some base ->
    let top = List.fold_left max base config.retry_schedule in
    Sat.Solver.set_max_learnts solver (max 2000 (4 * top))
  | None -> ());
  (* Certified mode: the checker must observe the clause stream from the
     first Tseitin clause on, so it attaches before any encoding. *)
  let cert =
    if config.certify then begin
      let d = Sat.Drup.create () in
      Sat.Drup.attach d solver;
      Some d
    end
    else None
  in
  let st =
    {
      cfg = config;
      stats;
      fresh;
      rng;
      pats;
      plan = Sim.Kernel.compile_aig ~hint:(A.num_nodes old_net) fresh;
      sigs = Array.make (max 16 (A.num_nodes old_net)) [||];
      supports = Array.make (max 16 (A.num_nodes old_net)) None;
      window_tts = Array.make (max 16 (A.num_nodes old_net)) None;
      sig_count = 0;
      sim_np = P.num_patterns pats;
      classes = Equiv_classes.create ~num_patterns:(P.num_patterns pats);
      pending_ce = 0;
      env = Sat.Tseitin.create fresh solver;
      solver;
      budget;
      charged_conflicts = 0;
      charged_propagations = 0;
      cert;
      eval_val = [||];
      eval_stamp = [||];
      eval_epoch = 0;
    }
  in
  (* Guided init may already have eaten the whole budget. *)
  if config.guided_init then (
    match Obs.Budget.check_now st.budget with
    | Some reason -> note_exhausted st reason "guided"
    | None -> ());
  (* PIs first so indices line up; register their signatures. *)
  let map = Array.make (A.num_nodes old_net) (-1) in
  map.(0) <- L.false_;
  for i = 0 to num_pis - 1 do
    map.(A.pi_node old_net i) <- A.add_pi fresh
  done;
  register_new_nodes st;
  let tr l =
    let m = map.(L.node l) in
    assert (m >= 0);
    L.xor_compl m (L.is_compl l)
  in
  if config.sat_domains >= 1 then
    (* Parallel dispatch: wave-collected tasks solved across a pool of
       solver domains, merges applied by this (single-writer) thread. *)
    sweep_dispatched st old_net map tr
  else begin
    let trace_every = 4096 in
    let processed = ref 0 in
    A.iter_ands old_net (fun nd ->
        incr processed;
        if Obs.Trace.enabled () && !processed mod trace_every = 0 then
          Obs.Trace.emitf "progress: %d/%d ANDs, %d merges, %d SAT calls"
            !processed (A.num_ands old_net) st.stats.Stats.merges
            (Stats.total_sat_calls st.stats);
        let before = A.num_nodes st.fresh in
        let l = A.add_and st.fresh (tr (A.fanin0 old_net nd)) (tr (A.fanin1 old_net nd)) in
        if A.num_nodes st.fresh = before then
          (* Structural hash hit or constant fold: already merged. *)
          map.(nd) <- l
        else if not (budget_ok st "sweep") then
          (* Degraded mode: the budget is gone, so the rest of the pass is
             a plain structural translation — linear, no simulation, no
             SAT. Every merge recorded so far was proven, so the partial
             sweep stays functionally equivalent to the input. *)
          map.(nd) <- l
        else begin
          register_new_nodes st;
          let fresh_node = L.node l in
          match try_merge st fresh_node with
          | Some merged ->
            st.stats.Stats.merges <- st.stats.Stats.merges + 1;
            if L.is_const merged then
              st.stats.Stats.const_merges <- st.stats.Stats.const_merges + 1;
            map.(nd) <- L.xor_compl merged (L.is_compl l)
          | None -> map.(nd) <- l
        end)
  end;
  Array.iter (fun l -> ignore (A.add_po st.fresh (tr l))) (A.pos old_net);
  (* The fresh network still holds nodes that lost their fanout to a
     merge; a cleanup pass drops them. *)
  let result, _ = A.cleanup st.fresh in
  (* Opt-in self-check: cross-check every PO of the result against the
     input under fresh random patterns. A cheap necessary condition —
     {!Selfcheck.run} adds the full CEC pass on top. Runs outside the
     budget: a degraded result must still verify. *)
  if config.verify then begin
    let vpats =
      P.random ~seed:(Rng.int64 rng) ~num_pis ~num_patterns:(32 * 8)
    in
    let np = P.num_patterns vpats in
    let ta = Sim.Bitwise.simulate_aig old_net vpats in
    let tb = Sim.Bitwise.simulate_aig result vpats in
    Array.iteri
      (fun o la ->
        let sa = Sim.Bitwise.po_signature ta ~num_patterns:np ~lit:la in
        let sb =
          Sim.Bitwise.po_signature tb ~num_patterns:np ~lit:(A.po result o)
        in
        if not (Sg.equal sa sb) then
          raise
            (Verification_failed
               (Printf.sprintf
                  "post-sweep bitwise check: PO %d differs from the input \
                   network"
                  o)))
      (A.pos old_net)
  end;
  (* Accumulate (not assign): the dispatch path already folded its pool
     members' solver counters in. *)
  let s = Sat.Solver.stats solver in
  stats.Stats.sat_decisions <- stats.Stats.sat_decisions + s.Sat.Solver.decisions;
  stats.Stats.sat_conflicts <- stats.Stats.sat_conflicts + s.Sat.Solver.conflicts;
  stats.Stats.sat_propagations <-
    stats.Stats.sat_propagations + s.Sat.Solver.propagations;
  stats.Stats.sat_learned <- stats.Stats.sat_learned + s.Sat.Solver.learned;
  stats.Stats.total_time <- Obs.Clock.now () -. t_start;
  Obs.Trace.emitf "sweep done: %d -> %d ANDs, %d merges, %.3fs"
    (A.num_ands old_net) (A.num_ands result) stats.Stats.merges
    stats.Stats.total_time;
  (result, stats)
