let config ?seed ?initial_words ?conflict_limit ?retry_schedule ?sim_domains
    ?sat_domains ?sat_wave ?deadline ?timeout ?budget ?(verify = false)
    ?(certify = false) ?cache ?(cache_paranoid = false) () =
  let base = Engine.fraig_config in
  let deadline =
    match (deadline, timeout, budget) with
    | Some d, _, _ -> Some d
    | None, Some s, _ -> Some (Obs.Clock.now () +. s)
    | None, None, Some b -> Obs.Budget.deadline b
    | None, None, None -> base.Engine.deadline
  in
  {
    base with
    Engine.seed = Option.value seed ~default:base.Engine.seed;
    initial_words = Option.value initial_words ~default:base.Engine.initial_words;
    conflict_limit =
      (match conflict_limit with Some l -> Some l | None -> base.Engine.conflict_limit);
    retry_schedule =
      Option.value retry_schedule ~default:base.Engine.retry_schedule;
    sim_domains = Option.value sim_domains ~default:base.Engine.sim_domains;
    sat_domains = Option.value sat_domains ~default:base.Engine.sat_domains;
    sat_wave = Option.value sat_wave ~default:base.Engine.sat_wave;
    deadline;
    budget;
    verify;
    certify;
    cache;
    cache_paranoid;
  }

let sweep ?seed ?initial_words ?conflict_limit ?retry_schedule ?sim_domains
    ?sat_domains ?sat_wave ?deadline ?timeout ?budget ?verify ?certify ?cache ?cache_paranoid net =
  let cfg =
    config ?seed ?initial_words ?conflict_limit ?retry_schedule ?sim_domains
      ?sat_domains ?sat_wave ?deadline ?timeout ?budget ?verify ?certify
      ?cache ?cache_paranoid ()
  in
  if cfg.Engine.verify then Selfcheck.run ~config:cfg net
  else Engine.run ~config:cfg net
