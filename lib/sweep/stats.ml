type exhaustion = { reason : string; phase : string }

type t = {
  mutable sat_sat : int;
  mutable sat_unsat : int;
  mutable sat_undet : int;
  mutable sat_retries : int;
  mutable merges : int;
  mutable const_merges : int;
  mutable window_merges : int;
  mutable window_splits : int;
  mutable ce_patterns : int;
  mutable initial_patterns : int;
  mutable resimulations : int;
  mutable sim_time : float;
  mutable plan_compile_time : float;
  mutable guided_time : float;
  mutable resim_time : float;
  mutable window_time : float;
  mutable sat_time : float;
  mutable total_time : float;
  mutable sat_decisions : int;
  mutable sat_conflicts : int;
  mutable sat_propagations : int;
  mutable sat_learned : int;
  mutable certified_unsat : int;
  mutable certified_models : int;
  mutable certificate_rejected : int;
  mutable guided_consts : int;
  mutable cube_splits : int;
  mutable cube_queries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_rejected : int;
  mutable budget_exhausted : exhaustion option;
}

let create () =
  {
    sat_sat = 0;
    sat_unsat = 0;
    sat_undet = 0;
    sat_retries = 0;
    merges = 0;
    const_merges = 0;
    window_merges = 0;
    window_splits = 0;
    ce_patterns = 0;
    initial_patterns = 0;
    resimulations = 0;
    sim_time = 0.;
    plan_compile_time = 0.;
    guided_time = 0.;
    resim_time = 0.;
    window_time = 0.;
    sat_time = 0.;
    total_time = 0.;
    sat_decisions = 0;
    sat_conflicts = 0;
    sat_propagations = 0;
    sat_learned = 0;
    certified_unsat = 0;
    certified_models = 0;
    certificate_rejected = 0;
    guided_consts = 0;
    cube_splits = 0;
    cube_queries = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_rejected = 0;
    budget_exhausted = None;
  }

let total_sat_calls t = t.sat_sat + t.sat_unsat + t.sat_undet

let simulation_time t =
  t.sim_time +. t.plan_compile_time +. t.guided_time +. t.resim_time
  +. t.window_time

let phase_times t =
  [
    ("sim", t.sim_time);
    ("plan_compile", t.plan_compile_time);
    ("guided", t.guided_time);
    ("resim", t.resim_time);
    ("window", t.window_time);
    ("sat", t.sat_time);
  ]

let to_json t =
  let open Obs.Json in
  Obj
    [
      ( "counters",
        Obj
          [
            ("sat_sat", Int t.sat_sat);
            ("sat_unsat", Int t.sat_unsat);
            ("sat_undet", Int t.sat_undet);
            ("sat_retries", Int t.sat_retries);
            ("total_sat_calls", Int (total_sat_calls t));
            ("merges", Int t.merges);
            ("const_merges", Int t.const_merges);
            ("window_merges", Int t.window_merges);
            ("window_splits", Int t.window_splits);
            ("ce_patterns", Int t.ce_patterns);
            ("initial_patterns", Int t.initial_patterns);
            ("resimulations", Int t.resimulations);
            ("certified_unsat", Int t.certified_unsat);
            ("certified_models", Int t.certified_models);
            ("certificate_rejected", Int t.certificate_rejected);
            ("guided_consts", Int t.guided_consts);
            ("cube_splits", Int t.cube_splits);
            ("cube_queries", Int t.cube_queries);
            ("cache_hits", Int t.cache_hits);
            ("cache_misses", Int t.cache_misses);
            ("cache_rejected", Int t.cache_rejected);
          ] );
      ( "phases_s",
        Obj
          (List.map (fun (k, v) -> (k, Float v)) (phase_times t)
          @ [ ("total", Float t.total_time) ]) );
      ( "sat_solver",
        Obj
          [
            ("decisions", Int t.sat_decisions);
            ("conflicts", Int t.sat_conflicts);
            ("propagations", Int t.sat_propagations);
            ("learned", Int t.sat_learned);
          ] );
      ( "budget_exhausted",
        match t.budget_exhausted with
        | None -> Null
        | Some e ->
          Obj [ ("reason", String e.reason); ("phase", String e.phase) ] );
    ]

let pp ppf t =
  Format.fprintf ppf
    "sat=%d unsat=%d undet=%d retries=%d merges=%d const=%d win_merge=%d \
     win_split=%d ce=%d sim=%.3fs plan=%.3fs guided=%.3fs resim=%.3fs \
     window=%.3fs sat_t=%.3fs total=%.3fs decisions=%d conflicts=%d props=%d \
     learned=%d"
    t.sat_sat t.sat_unsat t.sat_undet t.sat_retries t.merges t.const_merges
    t.window_merges t.window_splits t.ce_patterns t.sim_time
    t.plan_compile_time t.guided_time t.resim_time t.window_time t.sat_time
    t.total_time t.sat_decisions
    t.sat_conflicts t.sat_propagations t.sat_learned;
  if t.certified_unsat + t.certified_models + t.certificate_rejected > 0 then
    Format.fprintf ppf " cert_unsat=%d cert_models=%d cert_rejected=%d"
      t.certified_unsat t.certified_models t.certificate_rejected;
  if t.guided_consts > 0 then
    Format.fprintf ppf " guided_consts=%d" t.guided_consts;
  if t.cube_splits > 0 then
    Format.fprintf ppf " cube_splits=%d cube_queries=%d" t.cube_splits
      t.cube_queries;
  if t.cache_hits + t.cache_misses + t.cache_rejected > 0 then
    Format.fprintf ppf " cache_hits=%d cache_misses=%d cache_rejected=%d"
      t.cache_hits t.cache_misses t.cache_rejected;
  match t.budget_exhausted with
  | None -> ()
  | Some e -> Format.fprintf ppf " budget_exhausted=%s/%s" e.reason e.phase
