(** SAT-guided initial simulation patterns (Section IV-A, after [6]).

    Two rounds of constraint-driven pattern generation refine the initial
    random set:

    - round one targets nodes whose signature is all-zeros or all-ones —
      a SAT query either yields a pattern producing the missing value
      (killing a false constant candidate before it costs an equivalence
      query later) or proves the node genuinely constant;
    - round two targets nodes whose signature has very few ones or very
      few zeros, generating patterns that exercise the rare value so
      near-constant signatures stop colliding into one candidate class.

    The queries run on their own solver against the unswept network; the
    produced patterns are plain PI assignments reusable by any engine. *)

type outcome = {
  patterns_added : int;
  proven_const : (int * bool) list;
      (** nodes round one proved constant, with their value *)
  queries : int;  (** SAT queries spent *)
}

val generate :
  ?max_queries:int ->
  ?low_ratio:float ->
  ?conflict_limit:int ->
  ?deadline:float ->
  Aig.Network.t ->
  Sim.Patterns.t ->
  seed:int64 ->
  outcome
(** Appends patterns to the given set in place. [low_ratio] (default
    0.02) is round two's rare-value threshold; [max_queries] (default
    256) bounds total solver usage; [deadline] (absolute wall clock)
    stops issuing queries — and interrupts the in-flight one — once it
    passes, returning whatever was generated so far. *)
