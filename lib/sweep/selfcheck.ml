let run ?(config = Engine.stp_config) net =
  let config = { config with Engine.verify = true } in
  let swept, stats = Engine.run ~config net in
  (* The oracle runs with fault injection suspended: faults may degrade
     the sweep under test, never the check that judges its output. *)
  (match
     Obs.Fault.bypass (fun () ->
         Cec.check ~certify:config.Engine.certify net swept)
   with
  | Cec.Equivalent -> ()
  | Cec.Different { po; _ } ->
    raise
      (Engine.Verification_failed
         (Printf.sprintf "post-sweep CEC: PO %d differs from the input" po))
  | Cec.Undetermined po ->
    raise
      (Engine.Verification_failed
         (Printf.sprintf
            "post-sweep CEC: PO %d could not be proven equivalent" po)));
  (swept, stats)
