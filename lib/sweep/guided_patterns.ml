module A = Aig.Network
module L = Aig.Lit
module Sg = Sim.Signature
module Rng = Sutil.Rng

type outcome = {
  patterns_added : int;
  proven_const : (int * bool) list;
  queries : int;
}

let generate ?(max_queries = 256) ?(low_ratio = 0.02) ?conflict_limit
    ?deadline net pats ~seed =
  let rng = Rng.create seed in
  let solver = Sat.Solver.create () in
  let env = Sat.Tseitin.create net solver in
  let queries = ref 0 in
  let added = ref 0 in
  let consts = ref [] in
  (* Proven-constant flags, updated the moment a query proves one: an
     O(1) check per node instead of a per-round [List.memq] scan of a
     snapshot (O(ANDs x consts), and blind to constants proven earlier
     in the same pass over the network). *)
  let proven = Bytes.make (max 1 (A.num_nodes net)) '\000' in
  let np () = Sim.Patterns.num_patterns pats in
  let expired () =
    match deadline with Some d -> Obs.Clock.now () > d | None -> false
  in
  (* Ask for a pattern on which [node] takes [want]; append it padded with
     random values on PIs outside the encoded cone. *)
  let query node want =
    incr queries;
    match
      Sat.Tseitin.check_const ?conflict_limit ?deadline env
        (L.of_node node false) (not want)
    with
    | Sat.Tseitin.Counterexample ce ->
      Sim.Patterns.add_pattern_randomized pats rng
        (Array.map (fun b -> Some b) ce);
      incr added;
      true
    | Sat.Tseitin.Equivalent ->
      (* node is constantly [not want]. *)
      consts := (node, not want) :: !consts;
      Bytes.set proven node '\001';
      false
    | Sat.Tseitin.Undetermined | Sat.Tseitin.Uncertified _ -> false
  in
  let round threshold =
    let tbl = Sim.Bitwise.simulate_aig net pats in
    let n = np () in
    let lo = int_of_float (ceil (threshold *. float_of_int n)) in
    A.iter_ands net (fun nd ->
        if !queries < max_queries && (not (expired ()))
           && Bytes.get proven nd = '\000'
        then begin
          let ones = Sg.count_ones tbl.(nd) in
          if ones <= lo then ignore (query nd true)
          else if n - ones <= lo then ignore (query nd false)
        end)
  in
  (* Round one: strict constants. Round two: rare values. *)
  round 0.0;
  if not (expired ()) then round low_ratio;
  { patterns_added = !added; proven_const = List.rev !consts; queries = !queries }
