(** A pool of solver domains for the sweep engine's SAT queries.

    Each pool member owns one incremental {!Sat.Solver} with its own
    {!Sat.Tseitin} environment over the shared fresh network and, in
    certified mode, its own {!Sat.Drup} checker attached before the
    first clause — so every domain carries an independent proof stream
    and every merge it proves replays on its own checker.

    The engine drives the pool in waves (see DESIGN.md "Parallel
    dispatch"): it collects tasks while translating nodes, freezes the
    network, calls {!run_wave} (workers drain the task queue through
    {!Sutil.Par.Pool.drain}, writing only their own result slots), then
    applies the results in task order as the single writer. Hard miters
    that exhausted the retry schedule can be re-attacked with
    {!run_cubes}, which splits the query across all assignments of a few
    cone PIs.

    Thread-safety contract: the network must not be mutated between the
    start of {!run_wave}/{!run_cubes} and its return; the shared
    {!Obs.Budget} is the only cross-domain channel (sticky atomic
    exhaustion — any worker can trip degradation for all). *)

type cand = {
  c_rep : int;  (** earlier fresh node to compare against *)
  c_compl : bool;  (** complement relation per the frozen signatures *)
  c_window_eq : bool;
      (** the exhaustive window already proved this equality — merge
          without a solver query. Must be the last candidate of its
          task. *)
}

type task = { t_node : int; t_cands : cand list }
(** One fresh node with its pre-filtered candidate walk: window splits
    removed (and charged to [max_compares]) at collect time, list
    truncated to the node's remaining compare budget. *)

type counts = {
  mutable n_unsat : int;
  mutable n_undet : int;
  mutable n_retries : int;
  mutable n_cert_unsat : int;
  mutable n_cert_rejected : int;
}

type outcome =
  | Merged of Aig.Lit.t * bool
      (** proven merge target; [true] when a window-equal candidate
          closed the walk (no SAT involved) *)
  | Exhausted
      (** candidate list exhausted without a proof (also: a rejected
          certificate degraded the node) *)
  | Hard of cand
      (** the retry schedule ran dry on this candidate — a
          cube-and-conquer target *)
  | Stopped  (** shared budget exhausted mid-walk *)

type result = {
  mutable r_outcome : outcome;
  mutable r_ces : (bool array * int * bool) list;
      (** counterexamples in reverse attempt order:
          [(pattern, rep, compl)] — the engine validates and applies
          them in order at merge time *)
  r_counts : counts;
}

type t

val create :
  domains:int ->
  certify:bool ->
  conflict_limit:int option ->
  retry_schedule:int list ->
  Aig.Network.t ->
  Obs.Budget.t ->
  t
(** Spawns the worker pool and one solver/env/checker per member.
    [domains] is clamped to at least 1 (a 1-domain pool runs tasks on
    the calling domain — same code path, no concurrency). *)

val domains : t -> int

val run_wave : t -> task array -> result array
(** Solves every task, one result slot per task (slot [i] belongs to
    [tasks.(i)] regardless of which domain ran it). Returns after all
    tasks finish; the caller applies merges/counterexamples in task
    order. *)

type cube_query = {
  q_node : int;
  q_rep : int;
  q_compl : bool;
  q_cube : (int * bool) list;  (** PI node -> forced value *)
}

type cube_answer = C_unsat | C_ce of bool array | C_undet | C_uncert

val run_cubes : t -> conflict_limit:int option -> cube_query array -> cube_answer array
(** One solver query per cube, the cube joined to the query assumptions
    (so certified UNSATs replay under their own cube). The caller merges
    a hard pair only when {e every} cube of its full [2^k] enumeration
    comes back [C_unsat]; any [C_ce] is an ordinary counterexample. *)

val solver_stats : t -> Sat.Solver.stats
(** Field-wise sum over all pool members. *)

val shutdown : t -> unit
(** Joins the worker pool. The pool must not be used afterwards. *)
